// Running Parallel-ML source programs on the runtime: the language layer
// (lexer → parser → type inference → bytecode → VM) compiles `par`, refs,
// and arrays onto the hierarchical heap; the VM's stacks are precise GC
// roots and every effect goes through the entanglement barriers.
//
// This example runs three embedded programs — a parallel Fibonacci, an
// imperative array program, and an entangled producer/consumer — and
// prints each result, its inferred type, and the runtime statistics.
//
//	go run ./examples/mlang
//
// Standalone programs run with: go run ./cmd/mplgo program.mpl
package main

import (
	"fmt"
	"log"

	"mplgo/internal/mlang"
	"mplgo/mpl"
)

var programs = []struct {
	name string
	src  string
}{
	{"parallel fib", `
let fun fib n =
  if n < 2 then n
  else if n < 12 then fib (n - 1) + fib (n - 2)
  else let val p = par (fib (n - 1), fib (n - 2)) in #1 p + #2 p end
in fib 24 end`},

	{"imperative sieve", `
let val n = 2000 in
let val composite = array (n, false) in
let fun markFrom p =
  let fun go k =
    if p * k >= n then ()
    else (update (composite, p * k, true); go (k + 1))
  in go 2 end in
let fun count i =
  if i >= n then 0
  else if not (sub (composite, i)) then (markFrom i; 1 + count (i + 1))
  else count (i + 1)
in count 2 end end end end`},

	{"entangled handoff", `
let val cell = ref (ref 0) in
let val p = par (
    (cell := ref 41; 1),
    let fun poll u =
      let val v = ! (!cell) in
      if v = 41 then v + 1 else poll ()
      end
    in poll () end)
in #2 p end end`},
}

func main() {
	for _, p := range programs {
		res, err := mlang.Run(p.src, mpl.Config{Procs: 2})
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		s := res.Runtime.EntStats()
		fmt.Printf("%-20s val it = %s : %s\n", p.name+":", res.Rendered, res.Type)
		fmt.Printf("%-20s heaps=%d entangledReads=%d pins=%d unpins=%d\n",
			"", res.Runtime.Tree().Count(), s.EntangledReads, s.Pins, s.Unpins)
	}
}
