(* Data-parallel primitives: tabulate builds in parallel, reduce folds in
   parallel. Sum of squares below 10000. *)
reduce (tabulate (10000, fn i => i * i), 0, fn a => fn b => a + b)
