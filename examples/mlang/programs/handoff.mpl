(* An ENTANGLED program: the left task publishes a ref of a ref, the right
   task reads through it while both run. Old MPL aborts this program
   (run with -mode detect to see); entanglement management executes it. *)
let val cell = ref (ref 0) in
let val p = par (
    (cell := ref 41; 1),
    let fun poll u =
      let val v = ! (!cell) in
      if v = 41 then v + 1 else poll ()
      end
    in poll () end)
in #2 p end end
