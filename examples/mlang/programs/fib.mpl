(* Parallel Fibonacci: par forks child heaps; joins merge them back. *)
let fun fib n =
  if n < 2 then n
  else if n < 12 then fib (n - 1) + fib (n - 2)
  else let val p = par (fib (n - 1), fib (n - 2)) in #1 p + #2 p end
in (print (fib 25); fib 25) end
