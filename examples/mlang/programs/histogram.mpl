(* Parallel histogram via tabulate over bins: each bin counts its own
   values — a reduction expressed with data-parallel primitives. *)
let val n = 20000 in
let val bins = 8 in
let val h = tabulate (bins, fn b =>
  reduce (tabulate (n, fn i => if (i * i) mod bins = b then 1 else 0), 0,
          fn x => fn y => x + y)) in
reduce (tabulate (bins, fn b => sub (h, b) * (b + 1)), 0, fn x => fn y => x + y)
end end end
