(* Imperative sieve of Eratosthenes: unrestricted task-local effects. *)
let val n = 5000 in
let val composite = array (n, false) in
let fun markFrom p =
  let fun go k =
    if p * k >= n then ()
    else (update (composite, p * k, true); go (k + 1))
  in go 2 end in
let fun count i =
  if i >= n then 0
  else if not (sub (composite, i)) then (markFrom i; 1 + count (i + 1))
  else count (i + 1)
in count 2 end end end end
