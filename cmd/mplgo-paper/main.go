// Command mplgo-paper is the reproducible experiment-grid runner: it
// reads a checked-in grid spec (scripts/paper/experiments.json), executes
// every cell — benchmark × worker sweep × heap mode × ancestry mode ×
// barrier ablation, with warmups and repeats — in a fresh subprocess, and
// writes the paper-ready artifacts into the output directory:
//
//	samples.csv          every repeat of every cell, raw
//	summary_grouped.csv  per-cell mean/min/max/stddev/95% CI
//	speedup_curves.csv   measured and simulated speedup per sweep group
//	overhead.csv         per-group T1/Tseq overhead with CIs
//	crossval.csv/.txt    measured T_P vs Brent's bound and the simulator
//	results.json         raw cell results (samples, W/S, fingerprints)
//	host.json            the host fingerprint of the run
//
// Every table passes a validator before it is written, and the run exits
// nonzero on any Brent-bound violation: W/effP ≤ T_P ≤ W/effP + c·S must
// hold for every cell, with W and S from the deterministic trace replay
// and effP = min(P, host cores).
//
// Usage:
//
//	mplgo-paper -grid scripts/paper/experiments.json [-out scripts/paper/out]
//	            [-bench "go run ./cmd/mplgo-bench"] [-inprocess] [-trace-cells] [-attr-cells]
//	            [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"mplgo/internal/expgrid"
)

func main() {
	grid := flag.String("grid", "scripts/paper/experiments.json", "experiment grid spec")
	out := flag.String("out", "scripts/paper/out", "output directory")
	benchCmd := flag.String("bench", "go run ./cmd/mplgo-bench",
		"cell subprocess command (appended: -exp grid-cell -cell <file>)")
	inprocess := flag.Bool("inprocess", false,
		"run cells in this process instead of subprocesses (loses isolation; for quick looks)")
	traceCells := flag.Bool("trace-cells", false,
		"write one Chrome trace per cell into <out>/traces/, stamped with the cell identity")
	attrCells := flag.Bool("attr-cells", false,
		"add one attributed run per cell; the slow-path cost decomposition rides in results.json")
	list := flag.Bool("list", false, "print the expanded cells and exit without running")
	cores := flag.Int("cores", 0, "override the host core count for sweep expansion (0 = detect)")
	flag.Parse()

	spec, err := expgrid.LoadSpec(*grid)
	if err != nil {
		fatal("loading grid: %v", err)
	}

	r := &expgrid.Runner{Spec: spec, Progress: os.Stderr, Cores: *cores}
	if !*inprocess {
		r.BenchCmd = strings.Fields(*benchCmd)
	}
	if *traceCells {
		r.TraceDir = filepath.Join(*out, "traces")
		if err := os.MkdirAll(r.TraceDir, 0o755); err != nil {
			fatal("%v", err)
		}
	}
	r.Attr = *attrCells

	if *list {
		n := *cores
		if n <= 0 {
			n = runtime.NumCPU()
		}
		for _, c := range spec.Expand(n) {
			fmt.Printf("%s  (n=%d repeats=%d warmups=%d seed=%d)\n",
				c.ID, c.N, c.Repeats, c.Warmups, c.Seed)
		}
		return
	}

	rep, err := r.Run()
	if err != nil {
		fatal("grid run: %v", err)
	}
	if err := rep.WriteOutputs(*out); err != nil {
		fatal("writing outputs: %v", err)
	}
	fmt.Fprintf(os.Stderr, "# wrote %s/{%s,%s,%s,%s,%s,%s}\n", *out,
		expgrid.SamplesCSV, expgrid.SummaryCSV, expgrid.SpeedupCSV,
		expgrid.OverheadCSV, expgrid.CrossvalCSV, expgrid.ResultsJSON)
	for _, w := range rep.SimFlags {
		fmt.Fprintf(os.Stderr, "# warn: %s\n", w)
	}
	for _, w := range rep.ChecksumWarnings {
		fmt.Fprintf(os.Stderr, "# warn: %s\n", w)
	}
	if err := rep.Err(); err != nil {
		for _, v := range rep.BrentViolations {
			fmt.Fprintf(os.Stderr, "# BRENT: %s\n", v)
		}
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "# cross-validation: all %d cells within Brent's bound\n",
		len(rep.CrossVal))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mplgo-paper: "+format+"\n", args...)
	os.Exit(1)
}
