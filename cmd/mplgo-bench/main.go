// Command mplgo-bench regenerates the paper's tables and figures
// (experiment index in DESIGN.md §5).
//
// Usage:
//
//	mplgo-bench -exp time       # T1: time table (Tseq, T1, T64, overhead, speedup)
//	mplgo-bench -exp space      # T2: space table (max residency, blowups)
//	mplgo-bench -exp speedup    # F1: speedup curves vs processors
//	mplgo-bench -exp lang       # T3: language comparison vs native Go
//	mplgo-bench -exp entangle   # T4: entanglement cost metrics
//	mplgo-bench -exp ablate     # F2: barrier-mode ablation
//	mplgo-bench -exp elide      # E: mlang static barrier elision on/off
//	mplgo-bench -exp spacecurve # F3: residency vs processors
//	mplgo-bench -exp all        # everything above, in order
//	mplgo-bench -exp trace      # traced run → Chrome trace_event JSON
//	                            # (-trace <file>, -tracebench, -traceprocs;
//	                            #  never part of "all" — tracing is untimed)
//	mplgo-bench -exp attr       # A: sampled cost attribution — decompose
//	                            # the T1−Tseq gap per slow-path component
//	                            # (-attrbench selects the benchmarks; the
//	                            # result merges into the -json report as
//	                            # never-gated attr_* columns and the
//	                            # report is validated: components must be
//	                            # known and sum to no more than the
//	                            # attributed run's wall clock.
//	                            # Never part of "all".)
//	mplgo-bench -exp grid-cell -cell <file>
//	                            # machine-readable experiment-grid cell:
//	                            # run the Cell JSON in <file> ('-' for
//	                            # stdin) and print its CellResult JSON on
//	                            # stdout. This is cmd/mplgo-paper's
//	                            # subprocess mode — never part of "all".
//
// -scale divides every benchmark's default problem size (e.g. -scale 4
// runs quarter-size problems for a quick look).
//
// Whenever the time experiment runs, a machine-readable copy of the T1
// table is written as BENCH_<timestamp>.json (per-benchmark Tseq/T1/T64,
// overhead, speedup, and the T4 entanglement cost metrics of the T1 run),
// so every perf change leaves a diffable trail.
// -json overrides the output path; -json off disables it.
//
// -baseline <file.json> compares the fresh T1 report against a previous
// one and exits nonzero if any benchmark's overhead (T1/Tseq) regressed by
// more than -tolerance (default 10%). CI uses this against the checked-in
// baseline report. When the baseline's host fingerprint does not match the
// current host (different cores, GOMAXPROCS, or toolchain — or no
// fingerprint at all), regressions are downgraded to warnings: a number
// measured on different hardware bounds nothing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mplgo/internal/bench"
	"mplgo/internal/expgrid"
	"mplgo/internal/tables"
)

func main() {
	exp := flag.String("exp", "all", "experiment: time|space|speedup|lang|entangle|ablate|elide|spacecurve|stw|trace|attr|all")
	scale := flag.Int("scale", 1, "divide default problem sizes by this factor")
	tracePath := flag.String("trace", "trace.json",
		"output path for -exp trace (Chrome trace_event JSON; '-' for stdout)")
	traceBench := flag.String("tracebench", "pipeline", "benchmark -exp trace runs")
	traceProcs := flag.Int("traceprocs", 4, "worker count for -exp trace")
	jsonOut := flag.String("json", "auto",
		"T1 JSON report path; 'auto' names it BENCH_<timestamp>.json, 'off' disables")
	baseline := flag.String("baseline", "",
		"previous BENCH_*.json to compare the fresh T1 report against; exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.10,
		"relative T1-overhead regression tolerated by -baseline (0.10 = 10%)")
	cellPath := flag.String("cell", "",
		"grid-cell JSON for -exp grid-cell ('-' reads stdin)")
	attrBench := flag.String("attrbench", "counter,pipeline,dedup",
		"comma-separated benchmarks -exp attr decomposes")
	flag.Parse()

	// Grid-cell mode is fully machine-readable: the cell comes in as
	// JSON, the result goes out as JSON, and nothing else touches stdout.
	if *exp == "grid-cell" {
		if err := runGridCell(*cellPath); err != nil {
			fmt.Fprintf(os.Stderr, "grid-cell: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var sizes map[string]int
	if *scale > 1 {
		sizes = map[string]int{}
		for _, b := range bench.All {
			n := b.DefaultN / *scale
			if n < 4 {
				n = 4
			}
			// fib and nqueens scale by subtraction, not division.
			switch b.Name {
			case "fib":
				n = b.DefaultN - *scale
			case "nqueens":
				n = b.DefaultN - 1
			}
			sizes[b.Name] = n
		}
	}

	w := os.Stdout
	run := func(name string, f func()) {
		if *exp == name || *exp == "all" {
			f()
			fmt.Fprintln(w)
		}
	}
	run("time", func() {
		rows := tables.TimeTable(sizes, w)
		if *jsonOut == "off" {
			return
		}
		now := time.Now().UTC()
		path := *jsonOut
		if path == "auto" {
			path = fmt.Sprintf("BENCH_%s.json", now.Format("20060102T150405Z"))
		}
		if err := tables.WriteBenchJSON(rows, now.Format(time.RFC3339), *scale, path); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		if *baseline != "" {
			base, err := tables.ReadBenchJSON(*baseline)
			if err != nil {
				fmt.Fprintf(os.Stderr, "reading baseline %s: %v\n", *baseline, err)
				os.Exit(1)
			}
			fresh, err := tables.ReadBenchJSON(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "re-reading %s: %v\n", path, err)
				os.Exit(1)
			}
			if regs := tables.CompareBenchReports(base, fresh, *tolerance); len(regs) > 0 {
				// A baseline measured on a different host bounds nothing:
				// warn instead of failing, and say why (the fingerprints).
				if !fresh.Host.Matches(base.Host) {
					fmt.Fprintf(os.Stderr,
						"WARNING: baseline host does not match this host — regressions reported, not gated\n"+
							"  baseline: %s\n  current:  %s\n", base.Host, fresh.Host)
					for _, r := range regs {
						fmt.Fprintf(os.Stderr, "  warn: %s\n", r)
					}
					return
				}
				fmt.Fprintf(os.Stderr, "T1-overhead regressions vs %s:\n", *baseline)
				for _, r := range regs {
					fmt.Fprintf(os.Stderr, "  %s\n", r)
				}
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "no T1-overhead regression vs %s (tolerance %.0f%%)\n",
				*baseline, *tolerance*100)
		}
	})
	run("space", func() { tables.SpaceTable(sizes, w) })
	run("speedup", func() { tables.SpeedupFigure(sizes, w) })
	run("lang", func() { tables.LangTable(sizes, w) })
	run("entangle", func() { tables.EntangleTable(sizes, w) })
	run("ablate", func() { tables.AblateFigure(sizes, w) })
	run("elide", func() { tables.ElideTable(w) })
	run("spacecurve", func() { tables.SpaceFigure(sizes, w) })
	run("stw", func() { tables.STWTable(sizes, w) })

	// The trace experiment is opt-in only (never part of "all"): it is
	// untimed, writes a trace file, and exists for cmd/mplgo-trace and
	// Perfetto, not for the tables.
	if *exp == "trace" {
		if _, err := tables.TraceRun(*traceBench, sizes, *traceProcs, w, *tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
	}

	// Attribution is also opt-in only: it reruns its benchmarks with the
	// sampling profiler enabled, which the timed tables must never see.
	if *exp == "attr" {
		names := strings.Split(*attrBench, ",")
		results, err := tables.AttrTable(names, sizes, w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "attr: %v\n", err)
			os.Exit(1)
		}
		if err := tables.ValidateAttrResults(results); err != nil {
			fmt.Fprintf(os.Stderr, "attr: invalid report: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut != "off" {
			now := time.Now().UTC()
			path := *jsonOut
			if path == "auto" {
				path = fmt.Sprintf("BENCH_%s.json", now.Format("20060102T150405Z"))
			}
			if err := tables.MergeAttrJSON(results, now.Format(time.RFC3339), *scale, path); err != nil {
				fmt.Fprintf(os.Stderr, "attr: writing %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "merged attribution into %s\n", path)
		}
	}

	switch *exp {
	case "time", "space", "speedup", "lang", "entangle", "ablate", "elide", "spacecurve", "stw", "trace", "attr", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// runGridCell executes one experiment-grid cell (cmd/mplgo-paper's
// subprocess protocol): Cell JSON in, CellResult JSON out on stdout.
func runGridCell(path string) error {
	if path == "" {
		return fmt.Errorf("-exp grid-cell requires -cell <file>")
	}
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	var cell expgrid.Cell
	if err := json.Unmarshal(data, &cell); err != nil {
		return fmt.Errorf("bad cell JSON: %w", err)
	}
	res, err := expgrid.ExecuteCell(cell)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(append(out, '\n'))
	return err
}
