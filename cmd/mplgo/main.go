// Command mplgo runs programs in the mlang Parallel-ML-family language on
// the hierarchical runtime with entanglement management.
//
// Usage:
//
//	mplgo [flags] program.mpl
//	mplgo [flags] -e 'par (1 + 1, 2 + 2)'
//
// Flags:
//
//	-e expr       evaluate an expression instead of a file
//	-procs N      scheduler workers (default 1)
//	-mode M       entanglement mode: manage (default), detect, unsafe
//	-stats        print runtime statistics (GC, entanglement) to stderr
//	-dis          print the compiled bytecode to stderr before running
//	-dis-report   print per-site disentanglement verdicts to stderr
//	-elide=false  disable static barrier elision (checked build)
package main

import (
	"flag"
	"fmt"
	"os"

	"mplgo/internal/mlang"
	"mplgo/mpl"
)

func main() {
	expr := flag.String("e", "", "expression to evaluate")
	procs := flag.Int("procs", 1, "scheduler workers")
	modeName := flag.String("mode", "manage", "entanglement mode: manage|detect|unsafe")
	stats := flag.Bool("stats", false, "print runtime statistics")
	dis := flag.Bool("dis", false, "print compiled bytecode")
	disReport := flag.Bool("dis-report", false, "print per-site disentanglement verdicts")
	elide := flag.Bool("elide", true, "compile with static barrier elision")
	flag.Parse()

	var src string
	switch {
	case *expr != "":
		src = *expr
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: mplgo [flags] program.mpl | mplgo -e expr")
		os.Exit(2)
	}

	var mode mpl.Mode
	switch *modeName {
	case "manage":
		mode = mpl.Manage
	case "detect":
		mode = mpl.Detect
	case "unsafe":
		mode = mpl.Unsafe
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeName)
		os.Exit(2)
	}

	if *disReport {
		ast, err := mlang.Parse(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		an, err := mlang.Analyze(ast)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprint(os.Stderr, an.Report())
	}

	if *dis {
		ast, err := mlang.Parse(src)
		if err == nil {
			var an *mlang.Analysis
			if *elide {
				an, _ = mlang.Analyze(ast)
			}
			if prog, err := mlang.CompileWith(ast, an); err == nil {
				fmt.Fprint(os.Stderr, prog.Disassemble())
			}
		}
	}

	runner := mlang.Run
	if !*elide {
		runner = mlang.RunChecked
	}
	res, err := runner(src, mpl.Config{Procs: *procs, Mode: mode})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(res.Output)
	fmt.Printf("val it = %s : %s\n", res.Rendered, res.Type)

	if *stats {
		s := res.Runtime.EntStats()
		c, copied, reclaimed := res.Runtime.GCStats()
		es := res.Runtime.ElisionStats()
		fmt.Fprintf(os.Stderr, "heaps: %d  steals: %d\n", res.Runtime.Tree().Count(), res.Runtime.Steals())
		fmt.Fprintf(os.Stderr, "gc: %d collections, %d words copied, %d reclaimed\n", c, copied, reclaimed)
		fmt.Fprintf(os.Stderr, "entanglement: %d reads, %d writes, %d pins, %d unpins, peak %d\n",
			s.EntangledReads, s.EntangledWrites, s.Pins, s.Unpins, s.PinnedPeak)
		fmt.Fprintf(os.Stderr, "elision: %d static regions, %d loads, %d stores, %d allocs\n",
			es.StaticRegions, es.ElidedLoads, es.ElidedStores, es.ElidedAllocs)
	}
}
