// Command mplgo-trace summarizes a Chrome trace_event JSON file produced
// by the runtime's tracer (mplgo-bench -exp trace, or mpl.WriteChrome):
// event totals per kind, steal and entangled-read rates, a pin-lifetime
// histogram, and per-phase LGC/CGC latency statistics.
//
// Usage:
//
//	mplgo-trace trace.json
//	mplgo-trace -attr trace.json
//	mplgo-bench -exp trace -trace - | mplgo-trace -
//
// With -attr the tool instead prints the sampled cost-attribution
// decomposition (component × samples / estimated total ns / share of
// the recorded T1−Tseq gap) recovered from attr_* counters, and exits
// nonzero when the trace carries none.
//
// The exit status doubles as a validator: a file that is not a valid
// trace_event export of this runtime (missing traceEvents, events without
// the raw-record args, unknown event kinds) exits nonzero, which is what
// the CI trace job asserts.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mplgo/internal/trace"
)

func main() {
	attrOnly := flag.Bool("attr", false,
		"print the cost-attribution report (component × samples/est ns/% of T1−Tseq gap) instead of the summary")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mplgo-trace [-attr] <trace.json|->\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	path := flag.Arg(0)
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mplgo-trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	s, err := trace.Summarize(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mplgo-trace: invalid trace %s: %v\n", path, err)
		os.Exit(1)
	}
	if *attrOnly {
		if !s.FormatAttr(os.Stdout) {
			fmt.Fprintf(os.Stderr, "mplgo-trace: %s carries no attribution counters (run with attribution enabled)\n", path)
			os.Exit(1)
		}
		return
	}
	s.Format(os.Stdout)
}
