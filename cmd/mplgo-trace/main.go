// Command mplgo-trace summarizes a Chrome trace_event JSON file produced
// by the runtime's tracer (mplgo-bench -exp trace, or mpl.WriteChrome):
// event totals per kind, steal and entangled-read rates, a pin-lifetime
// histogram, and per-phase LGC/CGC latency statistics.
//
// Usage:
//
//	mplgo-trace trace.json
//	mplgo-bench -exp trace -trace - | mplgo-trace -
//
// The exit status doubles as a validator: a file that is not a valid
// trace_event export of this runtime (missing traceEvents, events without
// the raw-record args, unknown event kinds) exits nonzero, which is what
// the CI trace job asserts.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mplgo/internal/trace"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mplgo-trace <trace.json|->\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	path := flag.Arg(0)
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mplgo-trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	s, err := trace.Summarize(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mplgo-trace: invalid trace %s: %v\n", path, err)
		os.Exit(1)
	}
	s.Format(os.Stdout)
}
