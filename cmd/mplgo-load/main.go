// mplgo-load is the open-loop load generator for examples/server: Poisson
// arrivals at a configured offered rate, independent of responses — a
// closed loop would slow itself down under overload and hide exactly the
// regime this tool exists to measure. Latency is taken from each request's
// *scheduled* arrival, so queueing, shedding and retry backoff all count
// (no coordinated omission).
//
// Sheds (HTTP 503 from the server's admission controller) are retried with
// jittered exponential backoff up to -retries; a request that exhausts its
// budget counts as shed-final. Typed per-request outcomes map from status
// codes: 504 deadline-exceeded, 507 budget-exceeded.
//
// The report — p50/p99/p999 over completed requests, goodput, and the
// server's own admission counters scraped from /metrics — prints human-
// readable, and with -bench merges into a BENCH_*.json as a "server-load"
// entry. Those columns are never gated by the bench comparison (they carry
// no overhead ratio); they ride along as the latency trajectory.
//
// CI assertions: -min-shed fails the run unless the server actually shed,
// -max-p999 bounds tail latency, and -quit drains the server and fails if
// its post-burst invariant audit does.
//
//	mplgo-load -addr http://127.0.0.1:8080 -rps 400 -duration 5s \
//	    -min-shed 1 -max-p999 2s -quit -bench /tmp/bench.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mplgo/internal/tables"
)

// results aggregates request outcomes across worker goroutines.
type results struct {
	completed atomic.Int64
	shedFinal atomic.Int64 // retry budget exhausted, never admitted
	deadline  atomic.Int64
	budget    atomic.Int64
	failed    atomic.Int64
	retries   atomic.Int64

	mu   sync.Mutex
	lats []time.Duration // completed requests only
}

func (r *results) observe(lat time.Duration) {
	r.completed.Add(1)
	r.mu.Lock()
	r.lats = append(r.lats, lat)
	r.mu.Unlock()
}

// percentile returns the q-quantile (0 < q < 1) of the sorted latencies.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of an examples/server -listen instance")
	rps := flag.Float64("rps", 200, "offered load: open-loop Poisson arrivals per second")
	duration := flag.Duration("duration", 5*time.Second, "length of the arrival window")
	keys := flag.Int("keys", 1024, "request key space (keys drawn uniformly)")
	retries := flag.Int("retries", 3, "retry budget per request on shed (503)")
	retryBase := flag.Duration("retry-base", 5*time.Millisecond, "base of the jittered exponential backoff")
	reqTimeout := flag.Duration("timeout", 2*time.Second, "per-attempt HTTP timeout")
	seed := flag.Int64("seed", 1, "arrival-schedule and key seed")
	name := flag.String("name", "server-load", "bench entry name for -bench/-json")
	benchPath := flag.String("bench", "", "BENCH_*.json to merge the latency entry into (created if missing)")
	jsonOut := flag.Bool("json", false, "print the bench entry as JSON on stdout")
	maxP999 := flag.Duration("max-p999", 0, "fail if completed-request p999 exceeds this (0 = off)")
	minShed := flag.Int64("min-shed", 0, "fail unless the server reports at least this many sheds")
	quit := flag.Bool("quit", false, "send /quit after the run and fail if the server audit fails")
	flag.Parse()

	// The whole arrival schedule is precomputed from the seed: exponential
	// inter-arrival gaps (Poisson process) and uniform keys, so a given
	// seed offers an identical load shape to every server under test.
	rng := rand.New(rand.NewSource(*seed))
	var offsets []time.Duration
	var reqKeys []int
	for at := time.Duration(0); ; {
		at += time.Duration(rng.ExpFloat64() * float64(time.Second) / *rps)
		if at >= *duration {
			break
		}
		offsets = append(offsets, at)
		reqKeys = append(reqKeys, rng.Intn(*keys))
	}

	client := &http.Client{Timeout: *reqTimeout}
	var res results
	var wg sync.WaitGroup
	start := time.Now()
	for i := range offsets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scheduled := start.Add(offsets[i])
			time.Sleep(time.Until(scheduled))
			runOne(client, *addr, reqKeys[i], *retries, *retryBase, *seed+int64(i), scheduled, &res)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res.mu.Lock()
	sort.Slice(res.lats, func(i, j int) bool { return res.lats[i] < res.lats[j] })
	p50 := percentile(res.lats, 0.50)
	p99 := percentile(res.lats, 0.99)
	p999 := percentile(res.lats, 0.999)
	res.mu.Unlock()
	goodput := float64(res.completed.Load()) / elapsed.Seconds()
	server := scrapeCounters(client, *addr)

	fmt.Printf("offered %.1f rps for %v: %d arrivals\n", *rps, *duration, len(offsets))
	fmt.Printf("completed %d (goodput %.1f rps), shed-final %d, deadline %d, budget %d, failed %d, retries %d\n",
		res.completed.Load(), goodput, res.shedFinal.Load(),
		res.deadline.Load(), res.budget.Load(), res.failed.Load(), res.retries.Load())
	fmt.Printf("latency (from scheduled arrival): p50 %v  p99 %v  p999 %v\n", p50, p99, p999)
	fmt.Printf("server: admitted %d, shed %d, deadline-exceeded %d\n",
		server["mplgo_requests_admitted_total"],
		server["mplgo_requests_shed_total"],
		server["mplgo_requests_deadline_exceeded_total"])

	entry := tables.BenchEntry{
		Name:        *name,
		Entangled:   true, // every request reads/publishes ancestor-heap cache state
		LatP50NS:    p50.Nanoseconds(),
		LatP99NS:    p99.Nanoseconds(),
		LatP999NS:   p999.Nanoseconds(),
		OfferedRPS:  *rps,
		GoodputRPS:  goodput,
		ReqAdmitted: server["mplgo_requests_admitted_total"],
		ReqShed:     server["mplgo_requests_shed_total"],
		ReqDeadline: server["mplgo_requests_deadline_exceeded_total"],
	}
	if *jsonOut {
		b, _ := json.MarshalIndent(entry, "", "  ")
		fmt.Println(string(b))
	}
	if *benchPath != "" {
		if err := mergeBench(*benchPath, entry); err != nil {
			fmt.Fprintf(os.Stderr, "mplgo-load: merging %s: %v\n", *benchPath, err)
			os.Exit(1)
		}
		fmt.Printf("merged %q into %s\n", *name, *benchPath)
	}

	failed := false
	if res.completed.Load() == 0 {
		fmt.Fprintln(os.Stderr, "mplgo-load: FAIL: no request completed")
		failed = true
	}
	if *maxP999 > 0 && p999 > *maxP999 {
		fmt.Fprintf(os.Stderr, "mplgo-load: FAIL: p999 %v exceeds bound %v\n", p999, *maxP999)
		failed = true
	}
	if *minShed > 0 && server["mplgo_requests_shed_total"] < *minShed {
		fmt.Fprintf(os.Stderr, "mplgo-load: FAIL: server shed %d < required %d (run was not an overload)\n",
			server["mplgo_requests_shed_total"], *minShed)
		failed = true
	}
	if *quit {
		if err := quitServer(client, *addr); err != nil {
			fmt.Fprintf(os.Stderr, "mplgo-load: FAIL: %v\n", err)
			failed = true
		} else {
			fmt.Println("server drained, post-burst audit ok")
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runOne issues one scheduled request, retrying sheds with jittered
// exponential backoff. Latency is charged from the scheduled arrival.
func runOne(client *http.Client, addr string, key, retries int, base time.Duration,
	seed int64, scheduled time.Time, res *results) {
	rng := rand.New(rand.NewSource(seed))
	url := fmt.Sprintf("%s/req?key=%d", addr, key)
	for attempt := 0; ; attempt++ {
		resp, err := client.Get(url)
		if err != nil {
			res.failed.Add(1)
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			res.observe(time.Since(scheduled))
			return
		case http.StatusServiceUnavailable:
			if attempt >= retries {
				res.shedFinal.Add(1)
				return
			}
			res.retries.Add(1)
			// base × 2^attempt, scaled by a uniform [0.5, 1.5) jitter so
			// a shed storm's retries decorrelate instead of re-arriving
			// as the same thundering herd.
			time.Sleep(time.Duration(float64(base<<attempt) * (0.5 + rng.Float64())))
		case http.StatusGatewayTimeout:
			res.deadline.Add(1)
			return
		case http.StatusInsufficientStorage:
			res.budget.Add(1)
			return
		default:
			res.failed.Add(1)
			return
		}
	}
}

// scrapeCounters pulls the server's /metrics exposition and returns the
// integer samples by metric name (missing server → empty map; the report
// then shows zeros rather than failing the load run).
func scrapeCounters(client *http.Client, addr string) map[string]int64 {
	m := make(map[string]int64)
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return m
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if v, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
			m[fields[0]] = v
		}
	}
	return m
}

// mergeBench adds (or replaces) the entry in the bench report at path,
// creating a fresh report when the file does not exist.
func mergeBench(path string, e tables.BenchEntry) error {
	rep, err := tables.ReadBenchJSON(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		rep = &tables.BenchReport{
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		}
	}
	if rep.Host == nil {
		rep.Host = tables.CurrentFingerprint()
	}
	replaced := false
	for i := range rep.Benchmarks {
		if rep.Benchmarks[i].Name == e.Name {
			rep.Benchmarks[i] = e
			replaced = true
		}
	}
	if !replaced {
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	return tables.WriteReport(rep, path)
}

// quitServer drains the target and surfaces its post-burst audit verdict.
func quitServer(client *http.Client, addr string) error {
	resp, err := client.Get(addr + "/quit")
	if err != nil {
		return fmt.Errorf("quit: %w", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server audit failed: %s", strings.TrimSpace(string(body)))
	}
	return nil
}
